package repro_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sched"
)

// paperScaleConfig is the regime the paper claims ("several thousands of
// tasks and tens of processors", §4): ≥ 1000 task instances on 16
// processors. Seed 1 at util 8 is schedulable by the greedy substrate,
// so the benchmark exercises the full pipeline rather than the failure
// path.
func paperScaleConfig() (gen.Config, int) {
	return gen.Config{
		Seed:        1,
		Tasks:       300,
		Utilization: 8,
		Periods:     []model.Time{10, 20, 40, 80},
	}, 16
}

func paperScaleInput(tb testing.TB) (*model.TaskSet, *arch.Architecture) {
	tb.Helper()
	cfg, procs := paperScaleConfig()
	ts, err := gen.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if ts.TotalInstances() < 1000 {
		tb.Fatalf("paper-scale config yields %d instances, want ≥ 1000", ts.TotalInstances())
	}
	return ts, arch.MustNew(procs, 1)
}

// TestTrialAllocNeutral pins the zero-analyzer fast path of the
// pipeline BenchmarkTrial measures: a trial with no analyzers attached
// must neither record balancer candidates nor build an extras payload,
// so its allocation count stays where the PR-2 optimisation left it.
// The cap carries ~15% headroom over the measured 616 allocs/trial for
// this configuration; an analyzer-plumbing regression (candidate slices
// on by default, eager extras maps) blows well past it.
func TestTrialAllocNeutral(t *testing.T) {
	trial := campaign.Trial{Cell: "alloc", Gen: gen.Config{Seed: 3, Tasks: 12, Utilization: 1.5}, Procs: 3, Comm: 1}
	if r, err := campaign.RunTrial(trial); err != nil || r.Outcome != campaign.OutcomeOK || r.Extras != nil {
		t.Fatalf("warmup: outcome %q extras %v err %v", r.Outcome, r.Extras, err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if r, err := campaign.RunTrial(trial); err != nil || r.Outcome != campaign.OutcomeOK {
			t.Fatalf("outcome %q err %v", r.Outcome, err)
		}
	})
	const maxAllocs = 710
	if allocs > maxAllocs {
		t.Fatalf("zero-analyzer trial allocates %.0f objects, cap %d — analyzer plumbing leaked into the fast path", allocs, maxAllocs)
	}

	// Telemetry must ride along for free: a recorder is a fixed block of
	// atomics, so the observed trial stays under the same cap — within
	// one object of the unobserved run — or the obs layer has started
	// allocating on the hot path.
	rec := obs.NewSet(1).Recorder(0)
	observed := testing.AllocsPerRun(20, func() {
		if r, err := campaign.RunTrialObserved(trial, rec); err != nil || r.Outcome != campaign.OutcomeOK {
			t.Fatalf("outcome %q err %v", r.Outcome, err)
		}
	})
	if observed > maxAllocs || observed > allocs+1 {
		t.Fatalf("observed trial allocates %.0f objects vs %.0f unobserved (cap %d) — telemetry leaked onto the hot path", observed, allocs, maxAllocs)
	}

	// The analyzer path is the one allowed to pay: the same grid point
	// with analyzers attached must produce extras (and may allocate).
	spec := &campaign.Spec{
		Seeds: 1, SeedBase: 3,
		Tasks: []int{12}, Utilization: []float64{1.5}, Procs: []int{3},
		Analyzers: []string{"schedulability", "moves", "contention"},
	}
	trials, err := spec.Trials()
	if err != nil {
		t.Fatal(err)
	}
	if r, err := campaign.RunTrial(trials[0]); err != nil || r.Outcome != campaign.OutcomeOK || len(r.Extras) == 0 {
		t.Fatalf("analyzer trial: outcome %q, %d extras, err %v", r.Outcome, len(r.Extras), err)
	}
}

// BenchmarkTrial measures single-trial cost at paper scale, split by
// stage. The end-to-end case is exactly what one campaign worker runs
// per trial, so its latency bounds every sweep's throughput.
func BenchmarkTrial(b *testing.B) {
	b.Run("scheduler", func(b *testing.B) {
		ts, ar := paperScaleInput(b)
		b.ReportMetric(float64(ts.TotalInstances()), "instances")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sched.NewScheduler(ts, ar).Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("balancer", func(b *testing.B) {
		ts, ar := paperScaleInput(b)
		s, err := sched.NewScheduler(ts, ar).Run()
		if err != nil {
			b.Fatal(err)
		}
		is := sched.FromSchedule(s)
		b.ReportMetric(float64(ts.TotalInstances()), "instances")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := (&core.Balancer{}).Run(is); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("end-to-end", func(b *testing.B) {
		cfg, procs := paperScaleConfig()
		trial := campaign.Trial{Cell: "bench", Gen: cfg, Procs: procs, Comm: 1}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if r, err := campaign.RunTrial(trial); err != nil || r.Outcome != campaign.OutcomeOK {
				b.Fatalf("outcome %q err %v", r.Outcome, err)
			}
		}
	})
	// The observed variant bounds the telemetry overhead: the gap to
	// end-to-end is the whole price of the per-stage recorders (a few
	// clock reads and atomic adds per trial; budget < 2%).
	b.Run("end-to-end-observed", func(b *testing.B) {
		cfg, procs := paperScaleConfig()
		trial := campaign.Trial{Cell: "bench", Gen: cfg, Procs: procs, Comm: 1}
		rec := obs.NewSet(1).Recorder(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if r, err := campaign.RunTrialObserved(trial, rec); err != nil || r.Outcome != campaign.OutcomeOK {
				b.Fatalf("outcome %q err %v", r.Outcome, err)
			}
		}
	})
}
