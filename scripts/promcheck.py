#!/usr/bin/env python3
"""Strict Prometheus text-format 0.0.4 checker for CI smoke legs.

Usage: promcheck.py FILE [FILE...]

Every line of each capture must be a well-formed HELP/TYPE comment or
sample (no stray comments, no duplicate TYPE for a family), and every
histogram family must have cumulative buckets with the +Inf bucket
equal to its _count. Prints the parsed series of each file as JSON on
stdout (one object per file, keyed by path) so callers can make
series-specific assertions without re-parsing.
"""

import json
import re
import sys

METRIC = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
SAMPLE = re.compile(
    rf"^({METRIC})(\{{{LABEL}(?:,{LABEL})*\}})? (NaN|[+-]Inf|[+-]?[0-9][0-9.e+-]*)$"
)


def parse(path):
    """Parse one exposition; assert on any format violation."""
    series, typed = {}, set()
    for ln in open(path):
        ln = ln.rstrip("\n")
        if not ln:
            continue
        if ln.startswith("# HELP ") or ln.startswith("# TYPE "):
            parts = ln.split(" ", 3)
            assert len(parts) == 4 and re.fullmatch(METRIC, parts[2]), ln
            if parts[1] == "TYPE":
                assert parts[3] in ("counter", "gauge", "histogram"), ln
                assert parts[2] not in typed, f"duplicate TYPE for {parts[2]}"
                typed.add(parts[2])
            continue
        assert not ln.startswith("#"), f"stray comment: {ln!r}"
        m = SAMPLE.match(ln)
        assert m, f"unparseable sample: {ln!r}"
        series[m.group(1) + (m.group(2) or "")] = float(
            m.group(3).replace("Inf", "inf")
        )
    # Histogram invariants: buckets cumulative, +Inf == _count.
    for name in typed:
        buckets = [(k, v) for k, v in series.items() if k.startswith(name + "_bucket{")]
        if not buckets:
            continue
        by_stage = {}
        for k, v in buckets:
            stage = re.search(r'stage="([^"]*)"', k).group(1)
            by_stage.setdefault(stage, []).append((k, v))
        for stage, bs in by_stage.items():
            vals = [v for _, v in bs]
            assert vals == sorted(vals), f"{name}{{{stage}}} not cumulative"
            inf = [v for k, v in bs if 'le="+Inf"' in k]
            cnt = series[f'{name}_count{{stage="{stage}"}}']
            assert inf == [cnt], f"{name}{{{stage}}} +Inf {inf} != count {cnt}"
    return series


def main(argv):
    if len(argv) < 2:
        sys.exit(__doc__)
    out = {}
    for path in argv[1:]:
        out[path] = parse(path)
        print(f"strict /metrics parse OK: {path}", file=sys.stderr)
    json.dump(out, sys.stdout)
    print()


if __name__ == "__main__":
    main(sys.argv)
