#!/bin/sh
# scripts/bench.sh — emit the performance reports.
#
# Usage:
#   scripts/bench.sh before   # record the PR-2 pre-refactor baseline
#   scripts/bench.sh after    # record the PR-2 post-refactor numbers + speedups
#   scripts/bench.sh pr6      # record the PR-6 telemetry-overhead pair
#
# before/after merge into BENCH_pr2.json at the repo root (override
# with BENCH_OUT). The report carries single-trial latency p50/p99,
# allocations per trial, per-stage p50s, and the wall-clock of one
# paper-scale campaign sweep; once both stages are present the speedup
# block is recomputed. The raw `go test -bench` lines for
# BenchmarkTrial are echoed for the log.
#
# pr6 measures the same quantities twice into BENCH_pr6.json —
# "before" with telemetry recorders detached, "after" with them
# attached (BENCH_OBS=1) — so its speedup block is the overhead ratio
# of the internal/obs layer. Budget: trial p50 ratio ≥ 0.98 (< 2%
# overhead).
set -eu
cd "$(dirname "$0")/.."

stage="${1:-after}"
case "$stage" in
before|after) ;;
pr6)
	out="${BENCH_OUT:-BENCH_pr6.json}"
	go test -run '^$' -bench '^BenchmarkTrial$' -benchtime 5x .
	BENCH_REPORT=1 BENCH_STAGE=before BENCH_OUT="$out" \
		go test -run '^TestEmitBenchReport$' -v -count=1 .
	BENCH_REPORT=1 BENCH_STAGE=after BENCH_OBS=1 BENCH_OUT="$out" \
		go test -run '^TestEmitBenchReport$' -v -count=1 .
	exit 0
	;;
*) echo "usage: $0 before|after|pr6" >&2; exit 2 ;;
esac

go test -run '^$' -bench '^BenchmarkTrial$' -benchtime 5x .
BENCH_REPORT=1 BENCH_STAGE="$stage" BENCH_OUT="${BENCH_OUT:-BENCH_pr2.json}" \
	go test -run '^TestEmitBenchReport$' -v -count=1 .
