#!/bin/sh
# scripts/bench.sh — emit the PR-2 performance report.
#
# Usage:
#   scripts/bench.sh before   # record the pre-refactor baseline
#   scripts/bench.sh after    # record the post-refactor numbers + speedups
#
# Both stages merge into BENCH_pr2.json at the repo root (override with
# BENCH_OUT). The report carries single-trial latency p50/p99,
# allocations per trial, per-stage p50s, and the wall-clock of one
# paper-scale campaign sweep; once both stages are present the speedup
# block is recomputed. The raw `go test -bench` lines for BenchmarkTrial
# are echoed for the log.
set -eu
cd "$(dirname "$0")/.."

stage="${1:-after}"
case "$stage" in
before|after) ;;
*) echo "usage: $0 before|after" >&2; exit 2 ;;
esac

go test -run '^$' -bench '^BenchmarkTrial$' -benchtime 5x .
BENCH_REPORT=1 BENCH_STAGE="$stage" BENCH_OUT="${BENCH_OUT:-BENCH_pr2.json}" \
	go test -run '^TestEmitBenchReport$' -v -count=1 .
