package repro_test

import (
	"testing"

	"repro"
)

// TestFacadePipeline drives the whole public API the way the README's
// quickstart does.
func TestFacadePipeline(t *testing.T) {
	ts := repro.NewTaskSet()
	a, err := ts.AddTask("a", 5, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ts.AddTask("b", 10, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.AddDependence(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if err := ts.Freeze(); err != nil {
		t.Fatal(err)
	}

	ar, err := repro.NewArchitecture(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := repro.Schedule(ts, ar)
	if err != nil {
		t.Fatal(err)
	}
	if errs := s.Validate(); len(errs) > 0 {
		t.Fatalf("initial schedule invalid: %v", errs)
	}

	res, err := repro.Balance(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanAfter > res.MakespanBefore {
		t.Errorf("makespan increased %d → %d", res.MakespanBefore, res.MakespanAfter)
	}
	if errs := res.Schedule.Validate(); len(errs) > 0 {
		t.Fatalf("balanced schedule invalid: %v", errs)
	}

	rep, err := repro.Simulate(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IdleRatio < 0 || rep.IdleRatio > 1 {
		t.Errorf("idle ratio %v out of range", rep.IdleRatio)
	}
}

func TestFacadeGenerateAndBlocks(t *testing.T) {
	ts, err := repro.Generate(repro.GenConfig{Seed: 4, Tasks: 20})
	if err != nil {
		t.Fatal(err)
	}
	ar := repro.MustNewArchitecture(3, 1)
	s, err := repro.Schedule(ts, ar)
	if err != nil {
		t.Skip(err)
	}
	is := repro.Expand(s)
	blks := repro.BuildBlocks(is)
	if len(blks) == 0 {
		t.Fatal("no blocks built")
	}
	total := 0
	for _, b := range blks {
		total += len(b.Members)
	}
	if total != ts.TotalInstances() {
		t.Errorf("blocks cover %d instances, want %d", total, ts.TotalInstances())
	}
}

func TestFacadePolicies(t *testing.T) {
	ts, err := repro.Generate(repro.GenConfig{Seed: 6, Tasks: 20})
	if err != nil {
		t.Fatal(err)
	}
	ar := repro.MustNewArchitecture(3, 1)
	s, err := repro.Schedule(ts, ar)
	if err != nil {
		t.Skip(err)
	}
	for _, p := range []repro.Policy{repro.PolicyLexicographic, repro.PolicyRatio, repro.PolicyMemoryOnly} {
		res, err := repro.BalanceWith(repro.Expand(s), &repro.Balancer{Policy: p})
		if err != nil {
			t.Fatalf("policy %v: %v", p, err)
		}
		if res.MakespanAfter > res.MakespanBefore {
			t.Errorf("policy %v increased makespan", p)
		}
	}
}

func TestFacadeManualSchedule(t *testing.T) {
	ts := repro.NewTaskSet()
	a, _ := ts.AddTask("a", 4, 1, 1)
	if err := ts.Freeze(); err != nil {
		t.Fatal(err)
	}
	ar := repro.MustNewArchitecture(1, 0)
	s, err := repro.NewManualSchedule(ts, ar)
	if err != nil {
		t.Fatal(err)
	}
	s.MustPlace(a, 0, 2)
	if !s.Valid() {
		t.Error("manual schedule should validate")
	}
}
